open Lsra_ir
open Lsra_target
module B = Builder
open Helpers

(* Tests for the small passes (peephole, stats plumbing) and for the
   whole pipeline entry point. *)

let test_peephole_self_moves () =
  let machine = Machine.small () in
  let r = Machine.int_ret machine in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  B.move b (Loc.Reg r) (Operand.int 3);
  B.move b (Loc.Reg r) (Operand.reg r) (* self-move *);
  B.nop b;
  B.ret b;
  let f = B.finish b in
  let removed = Lsra.Peephole.run f in
  Alcotest.(check int) "self-move and nop removed" 2 removed;
  Alcotest.(check int) "one instruction remains" 1
    (Array.length (Block.body (Cfg.block (Func.cfg f) "entry")))

let test_peephole_keeps_real_moves () =
  let machine = Machine.small () in
  let r0 = Machine.int_ret machine in
  let r1 = Mreg.make ~cls:Rclass.Int 1 in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  B.move b (Loc.Reg r1) (Operand.int 3);
  B.move b (Loc.Reg r0) (Operand.reg r1);
  B.ret b;
  let f = B.finish b in
  Alcotest.(check int) "nothing removed" 0 (Lsra.Peephole.run f)

let test_stats_accumulate () =
  let a = Lsra.Stats.create () in
  a.Lsra.Stats.evict_loads <- 2;
  a.Lsra.Stats.resolve_stores <- 3;
  a.Lsra.Stats.coloring_iterations <- 2;
  let b = Lsra.Stats.create () in
  b.Lsra.Stats.evict_loads <- 1;
  b.Lsra.Stats.coloring_iterations <- 5;
  Lsra.Stats.add ~into:a b;
  Alcotest.(check int) "sums counters" 3 a.Lsra.Stats.evict_loads;
  Alcotest.(check int) "keeps max iterations" 5
    a.Lsra.Stats.coloring_iterations;
  Alcotest.(check int) "total spill" 6 (Lsra.Stats.total_spill a)

let test_pipeline_runs_dce () =
  (* pipeline must remove dead code before allocating *)
  let machine = Machine.small () in
  let b = B.create ~name:"main" in
  let t = B.temp b Rclass.Int in
  let dead = B.temp b Rclass.Int in
  B.start_block b "entry";
  B.li b t 5;
  B.li b dead 7;
  B.move b (Loc.Reg (Machine.int_ret machine)) (o_temp t);
  B.ret b;
  let f = B.finish b in
  let prog = prog_of_func f in
  ignore
    (Lsra.Allocator.pipeline ~verify:true
       Lsra.Allocator.default_second_chance machine prog);
  let f' = Program.find_exn prog "main" in
  (* the dead li is gone, and move optimisation turns the return move
     into a removable self-move, so at most the live li (+ possibly one
     move) remains *)
  Alcotest.(check bool) "dead li eliminated" true
    (Array.length (Block.body (Cfg.block (Func.cfg f') "entry")) <= 2)

let test_pipeline_verifies_all_algorithms () =
  let machine = Machine.small ~int_regs:5 ~float_regs:5 () in
  let f = pressure_func ~width:7 ~iters:4 in
  List.iter
    (fun algo ->
      let prog = prog_of_func (Func.copy f) in
      (* must not raise *)
      ignore (Lsra.Allocator.pipeline ~verify:true algo machine prog))
    [
      Lsra.Allocator.default_second_chance;
      Lsra.Allocator.Graph_coloring;
      Lsra.Allocator.Two_pass;
      Lsra.Allocator.Poletto;
    ]

let test_pipeline_cleanup_verifies () =
  (* verify + full cleanup must compose: every pass's output is
     re-verified, and the cleaned program must still execute
     identically *)
  let machine = Machine.small ~int_regs:4 ~float_regs:4 () in
  let f = pressure_func ~width:8 ~iters:5 in
  let prog = prog_of_func f in
  let reference = Lsra_sim.Interp.run machine prog ~input:"" in
  let copy = Program.copy prog in
  ignore
    (Lsra.Allocator.pipeline ~verify:true ~passes:Lsra.Passes.all
       Lsra.Allocator.default_second_chance machine copy);
  match reference, Lsra_sim.Interp.run machine copy ~input:"" with
  | Ok a, Ok b ->
    Alcotest.(check string) "ret"
      (Lsra_sim.Value.to_string a.Lsra_sim.Interp.ret)
      (Lsra_sim.Value.to_string b.Lsra_sim.Interp.ret)
  | Error e, _ | _, Error e -> Alcotest.failf "trapped: %s" e

let test_passes_parse () =
  let roundtrip spec =
    match Lsra.Passes.parse spec with
    | Error e -> Alcotest.failf "parse %S: %s" spec e
    | Ok ps -> Lsra.Passes.to_spec ps
  in
  Alcotest.(check string) "all" "copyprop,dce,motion,peephole,slots"
    (roundtrip "all");
  Alcotest.(check string) "default" "dce,peephole" (roundtrip "default");
  Alcotest.(check string) "none" "none" (roundtrip "none");
  Alcotest.(check string) "list is normalized to canonical order"
    "dce,motion,slots"
    (roundtrip "slots,dce,motion,dce");
  Alcotest.(check bool) "unknown pass rejected" true
    (match Lsra.Passes.parse "dce,frobnicate" with
    | Error _ -> true
    | Ok _ -> false)

let test_pipeline_empty_passes () =
  (* ~passes:[] really runs nothing around the allocation: dead code
     survives, and no Pass_begin event is traced *)
  let machine = Machine.small () in
  let mk () =
    let b = B.create ~name:"main" in
    let t = B.temp b Rclass.Int in
    let dead = B.temp b Rclass.Int in
    B.start_block b "entry";
    B.li b t 5;
    B.li b dead 7;
    B.move b (Loc.Reg (Machine.int_ret machine)) (o_temp t);
    B.ret b;
    prog_of_func (B.finish b)
  in
  let bare = mk () in
  let trace = Lsra.Trace.create () in
  ignore
    (Lsra.Allocator.pipeline ~verify:true ~passes:[] ~trace
       Lsra.Allocator.default_second_chance machine bare);
  let f' = Program.find_exn bare "main" in
  Alcotest.(check int) "dead li survives without dce" 3
    (Array.length (Block.body (Cfg.block (Func.cfg f') "entry")));
  let pass_events =
    List.filter
      (fun (e : Lsra.Trace.event) ->
        match e with
        | Lsra.Trace.Pass_begin _ | Lsra.Trace.Pass_end _ -> true
        | _ -> false)
      (Lsra.Trace.events trace)
  in
  Alcotest.(check int) "no pass events" 0 (List.length pass_events)

let test_pipeline_check_each_order () =
  (* the caller's oracle runs after every pre pass, after allocation
     (None), and after every post pass — in pipeline order *)
  let machine = Machine.small ~int_regs:4 ~float_regs:4 () in
  let prog = prog_of_func (pressure_func ~width:8 ~iters:5) in
  let seen = ref [] in
  let check_each pass _prog = seen := pass :: !seen in
  ignore
    (Lsra.Allocator.pipeline ~verify:true ~passes:Lsra.Passes.all ~check_each
       Lsra.Allocator.default_second_chance machine prog);
  let got =
    List.rev_map
      (function
        | None -> "alloc" | Some p -> Lsra.Passes.name p)
      !seen
  in
  Alcotest.(check (list string)) "oracle sandwich order"
    [ "copyprop"; "dce"; "alloc"; "motion"; "peephole"; "slots" ]
    got

let test_pipeline_trace_brackets () =
  (* every managed pass is bracketed by Pass_begin/Pass_end in the trace,
     and the stream stays well-formed *)
  let machine = Machine.small ~int_regs:4 ~float_regs:4 () in
  let prog = prog_of_func (pressure_func ~width:8 ~iters:5) in
  let trace = Lsra.Trace.create () in
  ignore
    (Lsra.Allocator.pipeline ~verify:true ~passes:Lsra.Passes.all ~trace
       Lsra.Allocator.default_second_chance machine prog);
  (match Lsra.Trace.well_formed (Lsra.Trace.events trace) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace not well-formed: %s" e);
  let begins, ends =
    List.fold_left
      (fun (b, e) (ev : Lsra.Trace.event) ->
        match ev with
        | Lsra.Trace.Pass_begin { pass } -> (pass :: b, e)
        | Lsra.Trace.Pass_end { pass; _ } -> (b, pass :: e)
        | _ -> (b, e))
      ([], []) (Lsra.Trace.events trace)
  in
  Alcotest.(check (list string)) "pass begins, in order"
    [ "copyprop"; "dce"; "motion"; "peephole"; "slots" ]
    (List.rev begins);
  Alcotest.(check (list string)) "matching ends" (List.rev begins)
    (List.rev ends)

let test_pipeline_records_pass_times () =
  (* each managed pass books wall time under its own stats counter *)
  let machine = Machine.small ~int_regs:4 ~float_regs:4 () in
  let prog = prog_of_func (pressure_func ~width:8 ~iters:5) in
  let stats =
    Lsra.Allocator.pipeline ~passes:Lsra.Passes.all
      Lsra.Allocator.default_second_chance machine prog
  in
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool) (name ^ " time booked") true (t >= 0.))
    [
      ("copyprop", stats.Lsra.Stats.time_copyprop);
      ("dce", stats.Lsra.Stats.time_dce);
      ("motion", stats.Lsra.Stats.time_motion);
      ("peephole", stats.Lsra.Stats.time_peephole);
      ("slots", stats.Lsra.Stats.time_slots);
    ]

let test_parallel_allocation_deterministic () =
  (* run_program ~jobs must produce the very same allocated program and
     the same merged counters as the sequential path, on every Specbench
     workload *)
  let machine = Machine.alpha_like in
  List.iter
    (fun (case : Lsra_workloads.Specbench.case) ->
      let seq = Program.copy case.Lsra_workloads.Specbench.program in
      let par = Program.copy case.Lsra_workloads.Specbench.program in
      let s_seq = Lsra.Allocator.run_program Lsra.Allocator.default_second_chance machine seq in
      let s_par =
        Lsra.Allocator.run_program ~jobs:4
          Lsra.Allocator.default_second_chance machine par
      in
      let name = case.Lsra_workloads.Specbench.name in
      Alcotest.(check string)
        (name ^ ": identical allocated program")
        (Lsra_text.Ir_text.to_string seq)
        (Lsra_text.Ir_text.to_string par);
      Alcotest.(check int)
        (name ^ ": same spill total")
        (Lsra.Stats.total_spill s_seq)
        (Lsra.Stats.total_spill s_par);
      Alcotest.(check int)
        (name ^ ": same slots")
        s_seq.Lsra.Stats.slots s_par.Lsra.Stats.slots;
      Alcotest.(check int)
        (name ^ ": same dataflow rounds")
        s_seq.Lsra.Stats.dataflow_rounds s_par.Lsra.Stats.dataflow_rounds)
    (Lsra_workloads.Specbench.all machine ~scale:1)

let test_allocator_names () =
  Alcotest.(check string) "binpack short name" "binpack"
    (Lsra.Allocator.short_name Lsra.Allocator.default_second_chance);
  Alcotest.(check bool) "names are distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map Lsra.Allocator.short_name
             [
               Lsra.Allocator.default_second_chance;
               Lsra.Allocator.Graph_coloring;
               Lsra.Allocator.Two_pass;
               Lsra.Allocator.Poletto;
             ]))
    = 4)

let suite =
  [
    Alcotest.test_case "peephole removes self-moves and nops" `Quick
      test_peephole_self_moves;
    Alcotest.test_case "peephole keeps real moves" `Quick
      test_peephole_keeps_real_moves;
    Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
    Alcotest.test_case "pipeline runs dce" `Quick test_pipeline_runs_dce;
    Alcotest.test_case "pipeline verifies all algorithms" `Quick
      test_pipeline_verifies_all_algorithms;
    Alcotest.test_case "pipeline cleanup composes with verify" `Quick
      test_pipeline_cleanup_verifies;
    Alcotest.test_case "passes parse round-trips" `Quick test_passes_parse;
    Alcotest.test_case "pipeline with empty pass list runs nothing" `Quick
      test_pipeline_empty_passes;
    Alcotest.test_case "pipeline oracle sandwich order" `Quick
      test_pipeline_check_each_order;
    Alcotest.test_case "pipeline trace brackets every pass" `Quick
      test_pipeline_trace_brackets;
    Alcotest.test_case "pipeline records per-pass times" `Quick
      test_pipeline_records_pass_times;
    Alcotest.test_case "parallel allocation is deterministic" `Quick
      test_parallel_allocation_deterministic;
    Alcotest.test_case "allocator names" `Quick test_allocator_names;
  ]
