(* Serving-path tests: wire framing edge cases over serve_channels, the
   persistent store's journal (round-trip, torn tail, compaction),
   restart warm-loading, and the socket multiplexer with concurrent
   clients. *)

open Lsra_target
module Service = Lsra_service.Service
module Scheduler = Lsra_service.Scheduler
module Server = Lsra_service.Server
module Protocol = Lsra_service.Protocol
module Store = Lsra_service.Store

let machine = Machine.small ~int_regs:4 ~float_regs:4 ()

let gen_program ?(seed = 11) () =
  let params =
    {
      Lsra_workloads.Gen.default_params with
      Lsra_workloads.Gen.seed;
      n_temps = 8;
      n_stmts = 14;
      n_funcs = 1;
    }
  in
  Lsra_workloads.Gen.program ~params machine

let source ?seed () = Lsra_text.Ir_text.to_string (gen_program ?seed ())

(* The payload a request for [src] must serve: the direct pipeline. *)
let direct_output src =
  let prog = Lsra_text.Ir_text.of_string src in
  ignore
    (Lsra.Allocator.pipeline ~passes:Lsra.Passes.default
       Lsra.Allocator.default_second_chance machine prog);
  Lsra_text.Ir_text.to_string prog

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Run one blocking serving session over the given input bytes; returns
   (severity, raw output bytes). *)
let serve_io ?(spot_check = 0) ?store_dir ?(shards = 1) input =
  let svc =
    Service.create
      {
        (Service.default_config machine) with
        Service.spot_check;
        store_dir;
        shards;
      }
  in
  let sched = Scheduler.create svc in
  let in_path = Filename.temp_file "lsra-serve" ".in" in
  let out_path = Filename.temp_file "lsra-serve" ".out" in
  Out_channel.with_open_bin in_path (fun oc ->
      Out_channel.output_string oc input);
  let ic = In_channel.open_bin in_path in
  let oc = Out_channel.open_bin out_path in
  let sev = Server.serve_channels sched ic oc in
  In_channel.close ic;
  Out_channel.close oc;
  let out = In_channel.with_open_bin out_path In_channel.input_all in
  Sys.remove in_path;
  Sys.remove out_path;
  (sev, out)

(* Split a raw response stream into (reply, body) frames, consuming
   exactly len= bytes of payload after each OK header. *)
let parse_replies s =
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match String.index_from_opt s pos '\n' with
      | None -> Alcotest.failf "unterminated reply line %S" (String.sub s pos (n - pos))
      | Some eol -> (
        let line = String.sub s pos (eol - pos) in
        if line = "" then go (eol + 1) acc
        else
          match Protocol.parse_reply line with
          | Error m -> Alcotest.failf "bad reply line %S: %s" line m
          | Ok (Protocol.R_ok { body_len = Some len; _ } as r) ->
            if eol + 1 + len > n then
              Alcotest.failf "reply %S promises %d bytes, stream has %d"
                line len (n - eol - 1);
            let body = String.sub s (eol + 1) len in
            go (eol + 1 + len) ((r, Some body) :: acc)
          | Ok (Protocol.R_ok { body_len = None; _ }) ->
            Alcotest.failf "OK reply without len=: %S" line
          | Ok r -> go (eol + 1) ((r, None) :: acc))
  in
  go 0 []

let req ?legacy_end id body =
  match legacy_end with
  | Some () -> Printf.sprintf "REQ %s\n%sEND\n" id body
  | None -> Protocol.render_frame ("REQ " ^ id) (Some body)

let ids replies =
  List.map
    (fun (r, _) ->
      match r with
      | Protocol.R_ok { id; _ } -> "OK:" ^ id
      | Protocol.R_err { id; _ } -> "ERR:" ^ id
      | Protocol.R_stats { id; _ } -> "STATS:" ^ id)
    replies

(* ------------------------------------------------------------------ *)
(* Framing edge cases.                                                 *)

(* A len=-framed body may contain a literal END line. The old framing
   silently truncated the body there and desynchronised the stream;
   now the full body reaches the parser (one clean ERR for this
   invalid program) and the next request is served normally. *)
let test_len_body_contains_end () =
  let src = source () in
  let evil = "this is not ir\nEND\nmore garbage\n" in
  let input = req "evil" evil ^ req "good" src ^ "QUIT\n" in
  let sev, out = serve_io input in
  Alcotest.(check int) "bad input is severity 0" 0 sev;
  match parse_replies out with
  | [ (Protocol.R_err { id = "evil"; code = 1; _ }, None);
      (Protocol.R_ok { id = "good"; hit = false; _ }, Some body) ] ->
    Alcotest.(check string) "stream stayed in sync" (direct_output src) body
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

let test_len_zero_body () =
  let src = source () in
  let input = req "empty" "" ^ req "good" src ^ "QUIT\n" in
  let _, out = serve_io input in
  (* Whatever an empty program means to the frontend, it must consume
     exactly one reply slot and leave the stream synchronised. *)
  match parse_replies out with
  | [ (Protocol.R_ok { id = "empty"; _ }, _); (Protocol.R_ok { id = "good"; _ }, Some body) ]
  | [ (Protocol.R_err { id = "empty"; _ }, _); (Protocol.R_ok { id = "good"; _ }, Some body) ]
    ->
    Alcotest.(check string) "second request intact" (direct_output src) body
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

let test_legacy_end_framing () =
  let src = source () in
  let input = req ~legacy_end:() "leg" src ^ "QUIT\n" in
  let sev, out = serve_io input in
  Alcotest.(check int) "clean" 0 sev;
  match parse_replies out with
  | [ (Protocol.R_ok { id = "leg"; hit = false; _ }, Some body) ] ->
    Alcotest.(check string) "legacy END framing still served" (direct_output src)
      body
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

let test_legacy_missing_end () =
  let input = "REQ trunc\nsome body line\n" (* EOF, no END *) in
  let _, out = serve_io input in
  match parse_replies out with
  | [ (Protocol.R_err { id = "trunc"; code = 1; msg }, None) ] ->
    Alcotest.(check bool) "mentions the missing terminator" true
      (String.length msg > 0)
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

let test_len_truncated_by_eof () =
  let input = "REQ cut len=100\nonly a few bytes" in
  let _, out = serve_io input in
  match parse_replies out with
  | [ (Protocol.R_err { id = "cut"; code = 1; _ }, None) ] -> ()
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

let test_quit_mid_batch () =
  let a = source ~seed:21 () and b = source ~seed:22 () in
  (* No FLUSH anywhere: QUIT itself must flush the pending batch, in
     submission order. *)
  let input = req "a" a ^ req "b" b ^ "QUIT\n" in
  let sev, out = serve_io input in
  Alcotest.(check int) "clean" 0 sev;
  match parse_replies out with
  | [ (Protocol.R_ok { id = "a"; _ }, Some ba); (Protocol.R_ok { id = "b"; _ }, Some bb) ]
    ->
    Alcotest.(check string) "a served" (direct_output a) ba;
    Alcotest.(check string) "b served" (direct_output b) bb
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

let test_stats_mid_batch () =
  let a = source ~seed:23 () and b = source ~seed:24 () in
  let input = req "a" a ^ "STATS s\n" ^ req "b" b ^ "QUIT\n" in
  let _, out = serve_io input in
  match parse_replies out with
  | [ (Protocol.R_ok { id = "a"; _ }, Some _);
      (Protocol.R_stats { id = "s"; fields }, None);
      (Protocol.R_ok { id = "b"; _ }, Some _) ] ->
    (* STATS flushed the in-flight batch first, so it reports request a
       as already served. *)
    Alcotest.(check (option string)) "requests counted" (Some "1")
      (List.assoc_opt "requests" fields);
    Alcotest.(check bool) "shards reported" true
      (List.mem_assoc "shards" fields);
    Alcotest.(check bool) "warm-loaded reported" true
      (List.mem_assoc "warm-loaded" fields)
  | rs -> Alcotest.failf "unexpected replies: %s" (String.concat " " (ids rs))

(* ------------------------------------------------------------------ *)
(* The persistent store.                                               *)

let test_store_round_trip () =
  let dir = temp_dir "lsra-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = Store.open_ ~dir ~shards:2 () in
  Store.append st ~key:"k1" ~algo:"binpack" ~output:"out-one\n";
  Store.append st ~key:"k2" ~algo:"poletto" ~output:"out-two\n";
  Store.append st ~key:"k1" ~algo:"binpack" ~output:"out-one-v2\n";
  Store.close st;
  (* Reopening with a different shard count must refuse: the count is
     part of the on-disk layout. *)
  (match Store.open_ ~dir ~shards:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shard-count mismatch accepted");
  let st2 = Store.open_ ~dir ~shards:2 () in
  let loaded = Store.load st2 in
  let live = Hashtbl.create 4 in
  List.iter (fun (k, a, o) -> Hashtbl.replace live k (a, o)) loaded;
  Alcotest.(check int) "two live keys" 2 (Hashtbl.length live);
  Alcotest.(check (option (pair string string))) "k1 latest payload wins"
    (Some ("binpack", "out-one-v2\n"))
    (Hashtbl.find_opt live "k1");
  Alcotest.(check (option (pair string string))) "k2 intact"
    (Some ("poletto", "out-two\n"))
    (Hashtbl.find_opt live "k2");
  let c = Store.counters st2 in
  Alcotest.(check int) "records replayed" 3 c.Store.loaded;
  Alcotest.(check int) "no torn shard" 0 c.Store.torn;
  Store.close st2

let test_store_torn_tail () =
  let dir = temp_dir "lsra-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = Store.open_ ~dir () in
  Store.append st ~key:"a" ~algo:"binpack" ~output:"payload-a\n";
  Store.append st ~key:"b" ~algo:"binpack" ~output:"payload-b\n";
  Store.append st ~key:"c" ~algo:"binpack" ~output:"payload-c\n";
  Store.close st;
  (* Crash-cut: chop bytes out of the last record's payload. *)
  let journal = Filename.concat (Filename.concat dir "shard-00") "journal" in
  let data = In_channel.with_open_bin journal In_channel.input_all in
  Out_channel.with_open_bin journal (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data - 5)));
  let st2 = Store.open_ ~dir () in
  let keys = List.map (fun (k, _, _) -> k) (Store.load st2) in
  Alcotest.(check (list string)) "torn tail skipped, prefix kept"
    [ "a"; "b" ] keys;
  Alcotest.(check int) "torn shard counted" 1 (Store.counters st2).Store.torn;
  Store.close st2;
  (* The torn tail was healed on load: a third open is clean. *)
  let st3 = Store.open_ ~dir () in
  Alcotest.(check int) "healed" 0 (Store.counters st3).Store.torn;
  Alcotest.(check int) "still two records" 2 (Store.counters st3).Store.loaded;
  Store.close st3

let test_store_compaction () =
  let dir = temp_dir "lsra-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* max_bytes floors at 4096; ~420-byte records overflow it quickly. *)
  let st = Store.open_ ~dir ~max_bytes:1 () in
  let payload i = String.make 400 (Char.chr (Char.code 'a' + (i mod 26))) in
  for i = 0 to 19 do
    Store.append st
      ~key:(Printf.sprintf "k%02d" i)
      ~algo:"binpack" ~output:(payload i)
  done;
  let c = Store.counters st in
  Alcotest.(check bool) "compaction ran" true (c.Store.compactions >= 1);
  Alcotest.(check bool) "journal within budget" true (c.Store.bytes <= 4096);
  let keys = List.map (fun (k, _, _) -> k) (Store.load st) in
  Alcotest.(check bool) "newest key survives" true (List.mem "k19" keys);
  Alcotest.(check bool) "oldest key dropped" true (not (List.mem "k00" keys));
  Store.close st;
  (* What survived compaction round-trips. *)
  let st2 = Store.open_ ~dir () in
  let keys2 = List.map (fun (k, _, _) -> k) (Store.load st2) in
  Alcotest.(check (list string)) "compacted journal reloads" keys keys2;
  Store.close st2

let test_store_sync_modes () =
  let dir = temp_dir "lsra-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* Batch mode: sync fsyncs the open journals; appends before and after
     a sync must both round-trip through a reopen. *)
  let st = Store.open_ ~dir ~shards:2 ~sync:Store.Batch () in
  Store.append st ~key:"k1" ~algo:"binpack" ~output:"one\n";
  Store.sync st;
  Store.append st ~key:"k2" ~algo:"binpack" ~output:"two\n";
  Store.sync st;
  Store.close st;
  let st2 = Store.open_ ~dir ~shards:2 () in
  Alcotest.(check int) "both records durable" 2
    (Store.counters st2).Store.loaded;
  (* Never mode (the default): sync is a no-op whether or not a journal
     is open, and appends still round-trip via the channel flush. *)
  Store.sync st2;
  Store.append st2 ~key:"k3" ~algo:"binpack" ~output:"three\n";
  Store.sync st2;
  Store.close st2;
  let st3 = Store.open_ ~dir ~shards:2 () in
  Alcotest.(check int) "append under Never survives" 3
    (Store.counters st3).Store.loaded;
  Store.close st3

let test_service_restart_warm () =
  let dir = temp_dir "lsra-warm" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg =
    {
      (Service.default_config machine) with
      Service.store_dir = Some (Filename.concat dir "store");
      shards = 2;
      spot_check = 1;  (* every hit re-allocated and byte-compared *)
    }
  in
  let sources = List.map (fun s -> source ~seed:s ()) [ 31; 32; 33 ] in
  let svc1 = Service.create cfg in
  let outs1 =
    List.mapi
      (fun i s ->
        (Service.handle svc1 (Service.request ~id:(Printf.sprintf "c%d" i) s))
          .Service.output)
      sources
  in
  (match Service.store svc1 with
  | Some st -> Store.close st
  | None -> Alcotest.fail "store not opened");
  (* A fresh service on the same directory — the "restarted process" —
     must answer every request from the journal-loaded cache, and the
     spot-check (which re-allocates from scratch) vets the payloads. *)
  let svc2 = Service.create cfg in
  Alcotest.(check int) "journal records warm-loaded" 3
    (Service.counters svc2).Service.warm_loaded;
  List.iteri
    (fun i (s, expected) ->
      let r =
        Service.handle svc2 (Service.request ~id:(Printf.sprintf "w%d" i) s)
      in
      Alcotest.(check bool) "served from warm cache" true r.Service.cached;
      Alcotest.(check string) "payload survived the restart" expected
        r.Service.output)
    (List.combine sources outs1);
  Alcotest.(check int) "all hits spot-checked" 3
    (Service.counters svc2).Service.spot_checks

(* ------------------------------------------------------------------ *)
(* The socket multiplexer.                                             *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n < 250 ->
      ignore (Unix.select [] [] [] 0.02);
      go (n + 1)
  in
  go 0;
  fd

let read_reply ic =
  let rec go () =
    match In_channel.input_line ic with
    | None -> Alcotest.fail "server closed the connection"
    | Some "" -> go ()
    | Some line -> (
      match Protocol.parse_reply line with
      | Error m -> Alcotest.failf "bad reply %S: %s" line m
      | Ok (Protocol.R_ok { body_len = Some len; _ } as r) ->
        (r, Some (really_input_string ic len))
      | Ok (Protocol.R_ok { body_len = None; _ }) ->
        Alcotest.failf "OK reply without len=: %S" line
      | Ok r -> (r, None))
  in
  go ()

let test_mux_concurrent_clients () =
  let dir = temp_dir "lsra-mux" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let svc = Service.create (Service.default_config machine) in
  let sched = Scheduler.create ~jobs:2 svc in
  let path = Filename.concat dir "serve.sock" in
  let srv =
    Domain.spawn (fun () -> Server.serve_socket ~max_clients:8 sched path)
  in
  let src = source ~seed:41 () in
  let expected = direct_output src in
  (* A client that dies mid-frame (header promised 1000 bytes, sent a
     handful, hung up) must poison only its own connection. *)
  let ragged = connect path in
  let roc = Unix.out_channel_of_descr ragged in
  output_string roc "REQ ragged len=1000\nonly a little";
  flush roc;
  Unix.close ragged;
  (* Three well-behaved concurrent clients, two requests each: one
     len=-framed, one legacy END-framed; all six answers must be
     byte-identical and routed to the connection that asked. *)
  let client i =
    let fd = connect path in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let check_one id send =
      send ();
      flush oc;
      match read_reply ic with
      | Protocol.R_ok { id = rid; _ }, Some body ->
        Alcotest.(check string) "routed to the requesting connection" id rid;
        Alcotest.(check string) "payload bit-identical" expected body
      | _ -> Alcotest.failf "request %s: unexpected reply" id
    in
    check_one
      (Printf.sprintf "c%d.len" i)
      (fun () ->
        output_string oc
          (Protocol.render_frame
             (Printf.sprintf "REQ c%d.len" i)
             (Some src)));
    check_one
      (Printf.sprintf "c%d.legacy" i)
      (fun () ->
        output_string oc (Printf.sprintf "REQ c%d.legacy\n%sEND\n" i src));
    Unix.close fd
  in
  let doms = List.init 3 (fun i -> Domain.spawn (fun () -> client i)) in
  List.iter Domain.join doms;
  (* STATS over a fresh connection, then QUIT to shut the server down. *)
  let fd = connect path in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc "STATS s\nQUIT\n";
  flush oc;
  (match read_reply ic with
  | Protocol.R_stats { id = "s"; fields }, None ->
    Alcotest.(check (option string)) "six requests served" (Some "6")
      (List.assoc_opt "requests" fields);
    (* Identical requests that land in the same first batch each miss
       (they run concurrently), so only the second round is guaranteed
       warm: 3 <= hits <= 5. *)
    let hits =
      match List.assoc_opt "hits" fields with
      | Some v -> int_of_string v
      | None -> Alcotest.fail "no hits field"
    in
    Alcotest.(check bool)
      (Printf.sprintf "second round all warm (hits=%d)" hits)
      true
      (hits >= 3 && hits <= 5)
  | _ -> Alcotest.fail "expected a STATS reply");
  Unix.close fd;
  let sev = Domain.join srv in
  Alcotest.(check int) "server severity clean" 0 sev;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "framing: len= body may contain END" `Quick
      test_len_body_contains_end;
    Alcotest.test_case "framing: len=0 empty body stays in sync" `Quick
      test_len_zero_body;
    Alcotest.test_case "framing: legacy END body still served" `Quick
      test_legacy_end_framing;
    Alcotest.test_case "framing: missing END is one clean ERR" `Quick
      test_legacy_missing_end;
    Alcotest.test_case "framing: len= body cut by EOF is ERR" `Quick
      test_len_truncated_by_eof;
    Alcotest.test_case "frames: QUIT flushes the pending batch" `Quick
      test_quit_mid_batch;
    Alcotest.test_case "frames: STATS mid-batch flushes first" `Quick
      test_stats_mid_batch;
    Alcotest.test_case "store: journal round-trip, shard guard" `Quick
      test_store_round_trip;
    Alcotest.test_case "store: torn tail skipped and healed" `Quick
      test_store_torn_tail;
    Alcotest.test_case "store: compaction under byte budget" `Quick
      test_store_compaction;
    Alcotest.test_case "store: sync modes (batch fsync, never no-op)" `Quick
      test_store_sync_modes;
    Alcotest.test_case "service: restart warm-loads from journal" `Quick
      test_service_restart_warm;
    Alcotest.test_case "mux: concurrent clients, ragged disconnect" `Quick
      test_mux_concurrent_clients;
  ]
