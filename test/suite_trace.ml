open Lsra_ir
open Lsra_target
module B = Builder
module Trace = Lsra.Trace

let o_int = Operand.int
let o_temp = Operand.temp

(* ------------------------------------------------------------------ *)
(* Trace invariants as properties: for any generated program and any
   allocator, replaying the decision trace must reproduce the
   allocator's own spill accounting, and the event stream must be
   structurally well-formed (strictly so for the second-chance scan:
   no decision about a temporary after its expiry, and every spill
   split is followed by a second chance or end of lifetime). *)

let machines =
  [
    ("tiny-4", Machine.small ~int_regs:4 ~float_regs:4 ());
    ("min-3", Machine.small ~int_regs:3 ~float_regs:3 ~int_caller_saved:1 ~float_caller_saved:1 ());
  ]

let run_traced ~mname ~algo seed =
  let machine = List.assoc mname machines in
  let params =
    {
      Lsra_workloads.Gen.default_params with
      Lsra_workloads.Gen.seed;
      n_temps = 6 + (seed mod 13);
      n_stmts = 8 + (seed mod 17);
      n_funcs = 1 + (seed mod 3);
    }
  in
  let prog = Lsra_workloads.Gen.program ~params machine in
  let trace = Trace.create () in
  let stats = Lsra.Allocator.run_program ~trace algo machine prog in
  let events = Trace.events trace in
  let aname = Lsra.Allocator.short_name algo in
  (match Trace.replay_check events stats with
  | Ok () -> ()
  | Error e ->
    QCheck.Test.fail_reportf "[%s/%s seed %d] replay disagrees with stats: %s"
      mname aname seed e);
  let strict =
    match algo with Lsra.Allocator.Second_chance _ -> true | _ -> false
  in
  (match Trace.well_formed ~strict events with
  | Ok () -> ()
  | Error e ->
    QCheck.Test.fail_reportf "[%s/%s seed %d] malformed event stream: %s"
      mname aname seed e);
  true

let property_tests =
  List.concat_map
    (fun (mname, _) ->
      List.map
        (fun algo ->
          QCheck.Test.make
            ~name:
              (Printf.sprintf "trace replay+shape: %s on %s"
                 (Lsra.Allocator.short_name algo) mname)
            ~count:15
            QCheck.(int_range 0 100_000)
            (run_traced ~mname ~algo))
        Lsra.Allocator.all)
    machines

(* ------------------------------------------------------------------ *)
(* Ablation fixtures for the paper's §2.5 options: tiny programs where
   flipping one option provably changes both the decision trace and
   the spill counts. *)

let has f events = List.exists f events

let alloc_with_trace ~opts machine func =
  let trace = Trace.create () in
  let original = Func.copy func in
  let stats = Lsra.Second_chance.run ~opts ~trace machine func in
  (match Lsra.Verify.check machine ~original ~allocated:func with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "verifier rejects fixture at '%s': %s" e.Lsra.Verify.where
      e.Lsra.Verify.what);
  (stats, Trace.events trace)

(* Early second chance (§2.5): [t] is live across the trailing call
   but can only be granted a caller-saved register — the callee-saved
   registers host [u] and [v], whose next references sit in the loop
   (10× keep-benefit, §2.3), so displacing them loses to taking the
   largest insufficient hole.  [v] dies before the call, freeing a
   callee-saved register: with the option on, the convention eviction
   of [t] becomes a register-to-register move into it; off, it is a
   store plus a later reload.  Returns the function and [t]'s id. *)
let esc_fixture () =
  let m = Machine.small () in
  let b = B.create ~name:"esc" in
  let u = B.temp b Rclass.Int ~name:"u" in
  let v = B.temp b Rclass.Int ~name:"v" in
  let i = B.temp b Rclass.Int ~name:"i" in
  let t = B.temp b Rclass.Int ~name:"t" in
  B.start_block b "entry";
  B.li b u 1;
  B.li b v 2;
  B.call b ~func:"leaf" ~args:[] ~rets:[]
    ~clobbers:(Machine.all_caller_saved m);
  B.li b i 0;
  B.li b t 7;
  B.start_block b "loop";
  B.bin b Instr.Add u (o_temp u) (o_temp v);
  B.bin b Instr.Add i (o_temp i) (o_int 1);
  B.branch b Instr.Lt (o_temp i) (o_int 4) ~ifso:"loop" ~ifnot:"exit";
  B.start_block b "exit";
  B.bin b Instr.Add u (o_temp u) (o_temp v);
  B.call b ~func:"leaf" ~args:[] ~rets:[]
    ~clobbers:(Machine.all_caller_saved m);
  B.bin b Instr.Add u (o_temp u) (o_temp t);
  B.move b (Loc.Reg (Machine.int_ret m)) (o_temp u);
  B.ret b;
  (B.finish b, Temp.id t)

let test_esc_on () =
  let opts =
    { Lsra.Binpack.default_options with Lsra.Binpack.early_second_chance = true }
  in
  let func, t_id = esc_fixture () in
  let stats, events = alloc_with_trace ~opts (Machine.small ()) func in
  Alcotest.(check int) "evict moves" 1 stats.Lsra.Stats.evict_moves;
  Alcotest.(check int) "evict stores" 0 stats.Lsra.Stats.evict_stores;
  Alcotest.(check int) "evict loads" 0 stats.Lsra.Stats.evict_loads;
  Alcotest.(check int) "total spill" 1 (Lsra.Stats.total_spill stats);
  Alcotest.(check bool) "Early_second_chance event for t" true
    (has
       (function
         | Trace.Early_second_chance { id; _ } -> id = t_id | _ -> false)
       events)

let test_esc_off () =
  let opts =
    {
      Lsra.Binpack.default_options with
      Lsra.Binpack.early_second_chance = false;
    }
  in
  let func, t_id = esc_fixture () in
  let stats, events = alloc_with_trace ~opts (Machine.small ()) func in
  Alcotest.(check int) "evict moves" 0 stats.Lsra.Stats.evict_moves;
  Alcotest.(check int) "evict stores" 1 stats.Lsra.Stats.evict_stores;
  Alcotest.(check int) "evict loads" 1 stats.Lsra.Stats.evict_loads;
  Alcotest.(check int) "total spill" 2 (Lsra.Stats.total_spill stats);
  Alcotest.(check bool) "Spill_split then Second_chance for t" true
    (has
       (function Trace.Spill_split { id; _ } -> id = t_id | _ -> false)
       events
    && has
         (function
           | Trace.Second_chance { id; _ } -> id = t_id | _ -> false)
         events);
  Alcotest.(check bool) "no Early_second_chance" false
    (has
       (function Trace.Early_second_chance _ -> true | _ -> false)
       events)

(* Move preferencing (§2.5): [bb := move a] with [a] dying at the
   move.  With the option on, [bb] inherits [a]'s register — the one
   free register with an unbounded availability hole — so when the
   long-lived [d] arrives it finds only insufficient holes (the pinned
   $r2 write and the call bound the free ones) and displaces [bb],
   which costs a store and a reload.  Off, the def picks the smallest
   sufficient hole instead, leaving the unbounded register for [d],
   and nothing spills.  The fixture thus pins down both the event
   delta (Assign/Move_pref vs Pref_miss) and the spill delta the
   preference causes.  Returns the function and [bb]'s id. *)
let move_opt_fixture m =
  let r2 = Mreg.make ~cls:Rclass.Int 2 in
  let b = B.create ~name:"moveopt" in
  let u0 = B.temp b Rclass.Int ~name:"u0" in
  let u1 = B.temp b Rclass.Int ~name:"u1" in
  let a = B.temp b Rclass.Int ~name:"a" in
  let bb = B.temp b Rclass.Int ~name:"bb" in
  let d = B.temp b Rclass.Int ~name:"d" in
  let s = B.temp b Rclass.Int ~name:"s" in
  B.start_block b "entry";
  B.li b u0 1;
  B.li b u1 2;
  B.li b a 3;
  B.bin b Instr.Add u0 (o_temp u0) (o_temp u1);
  B.movet b bb (o_temp a);
  B.li b d 7;
  B.call b ~func:"leaf" ~args:[] ~rets:[]
    ~clobbers:(Machine.all_caller_saved m);
  B.bin b Instr.Add s (o_temp bb) (o_temp bb);
  B.move b (Loc.Reg r2) (o_int 0);
  B.bin b Instr.Add s (o_temp s) (o_temp d);
  B.move b (Loc.Reg (Machine.int_ret m)) (o_temp s);
  B.ret b;
  (B.finish b, Temp.id bb)

let moveopt_machine () =
  Machine.small ~int_regs:3 ~float_regs:3 ~int_caller_saved:1
    ~float_caller_saved:1 ()

let test_move_opt_on () =
  let m = moveopt_machine () in
  let opts =
    {
      Lsra.Binpack.default_options with
      Lsra.Binpack.move_opt = true;
      early_second_chance = false;
    }
  in
  let func, bb_id = move_opt_fixture m in
  let stats, events = alloc_with_trace ~opts m func in
  Alcotest.(check bool) "Assign with Move_pref for bb" true
    (has
       (function
         | Trace.Assign { id; reason = Trace.Move_pref; _ } -> id = bb_id
         | _ -> false)
       events);
  Alcotest.(check int) "evict stores" 1 stats.Lsra.Stats.evict_stores;
  Alcotest.(check int) "evict loads" 1 stats.Lsra.Stats.evict_loads;
  Alcotest.(check int) "total spill" 2 (Lsra.Stats.total_spill stats)

let test_move_opt_off () =
  let m = moveopt_machine () in
  let opts =
    {
      Lsra.Binpack.default_options with
      Lsra.Binpack.move_opt = false;
      early_second_chance = false;
    }
  in
  let func, bb_id = move_opt_fixture m in
  let stats, events = alloc_with_trace ~opts m func in
  Alcotest.(check bool) "Pref_miss: move optimisation disabled" true
    (has
       (function
         | Trace.Pref_miss { id; why; _ } ->
           id = bb_id && why = "move optimisation disabled"
         | _ -> false)
       events);
  Alcotest.(check bool) "no Move_pref assignment" false
    (has
       (function
         | Trace.Assign { reason = Trace.Move_pref; _ } -> true | _ -> false)
       events);
  Alcotest.(check int) "total spill" 0 (Lsra.Stats.total_spill stats)

(* Every fixture's trace must itself replay and be strictly well-formed. *)
let test_fixture_streams () =
  List.iter
    (fun (opts, m, f) ->
      let stats, events = alloc_with_trace ~opts m f in
      (match Trace.replay_check events stats with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fixture replay: %s" e);
      match Trace.well_formed ~strict:true events with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fixture stream: %s" e)
    [
      (Lsra.Binpack.default_options, Machine.small (), fst (esc_fixture ()));
      ( { Lsra.Binpack.default_options with Lsra.Binpack.move_opt = false },
        moveopt_machine (),
        fst (move_opt_fixture (moveopt_machine ())) );
    ]

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests
  @ [
      Alcotest.test_case "esc on: convention eviction becomes a move" `Quick
        test_esc_on;
      Alcotest.test_case "esc off: same eviction is store+reload" `Quick
        test_esc_off;
      Alcotest.test_case "move_opt on: Move_pref assignment, spill cascade"
        `Quick test_move_opt_on;
      Alcotest.test_case "move_opt off: Pref_miss, no spills" `Quick
        test_move_opt_off;
      Alcotest.test_case "fixture traces replay and are well-formed" `Quick
        test_fixture_streams;
    ]
