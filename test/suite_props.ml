open Lsra_ir
open Lsra_target

(* Property-based differential testing: every allocator, on randomly
   generated well-defined programs over several machine shapes, must
   produce code that (a) the verifier accepts and (b) computes the same
   observable output as the unallocated program. *)

let machines =
  [
    ("alpha", Machine.alpha_like);
    ("small-8", Machine.small ~int_regs:8 ~float_regs:8 ~int_caller_saved:4 ~float_caller_saved:4 ());
    ("tiny-4", Machine.small ~int_regs:4 ~float_regs:4 ());
    ("min-3", Machine.small ~int_regs:3 ~float_regs:3 ~int_caller_saved:1 ~float_caller_saved:1 ());
  ]

let algorithms =
  [
    ("second-chance", fun m f -> ignore (Lsra.Second_chance.run m f));
    ( "second-chance-conservative",
      fun m f ->
        ignore
          (Lsra.Second_chance.run
             ~opts:
               {
                 Lsra.Binpack.early_second_chance = true;
                 move_opt = true;
                 consistency = Lsra.Binpack.Conservative;
               }
             m f) );
    ("coloring", fun m f -> ignore (Lsra.Coloring.run m f));
    ("two-pass", fun m f -> ignore (Lsra.Two_pass.run m f));
    ("poletto", fun m f -> ignore (Lsra.Poletto.run m f));
  ]

let run_one ~mname machine ~aname alloc seed =
  let params =
    {
      Lsra_workloads.Gen.default_params with
      Lsra_workloads.Gen.seed;
      n_temps = 6 + (seed mod 13);
      n_stmts = 8 + (seed mod 17);
      n_funcs = 1 + (seed mod 3);
    }
  in
  let prog = Lsra_workloads.Gen.program ~params machine in
  let input = String.init 16 (fun i -> Char.chr (65 + ((seed + i) mod 26))) in
  let reference = Lsra_sim.Interp.run machine prog ~input in
  let copy = Program.copy prog in
  List.iter
    (fun (n, f) ->
      let original = Func.copy f in
      alloc machine f;
      match Lsra.Verify.check machine ~original ~allocated:f with
      | Ok () -> ()
      | Error e ->
        QCheck.Test.fail_reportf
          "[%s/%s seed %d] verifier rejects %s at '%s': %s" mname aname seed
          n e.Lsra.Verify.where e.Lsra.Verify.what)
    (Program.funcs copy);
  let allocated = Lsra_sim.Interp.run machine copy ~input in
  match reference, allocated with
  | Ok r, Ok a ->
    if
      r.Lsra_sim.Interp.output <> a.Lsra_sim.Interp.output
      || not (Lsra_sim.Value.equal r.Lsra_sim.Interp.ret a.Lsra_sim.Interp.ret)
    then
      QCheck.Test.fail_reportf
        "[%s/%s seed %d] output mismatch: ref (%s, %S) vs alloc (%s, %S)"
        mname aname seed
        (Lsra_sim.Value.to_string r.Lsra_sim.Interp.ret)
        r.Lsra_sim.Interp.output
        (Lsra_sim.Value.to_string a.Lsra_sim.Interp.ret)
        a.Lsra_sim.Interp.output
    else true
  | Error e, _ ->
    QCheck.Test.fail_reportf "[%s/%s seed %d] reference trapped: %s" mname
      aname seed e
  | Ok _, Error e ->
    QCheck.Test.fail_reportf "[%s/%s seed %d] allocated trapped: %s" mname
      aname seed e

let tests =
  List.concat_map
    (fun (mname, machine) ->
      List.map
        (fun (aname, alloc) ->
          QCheck.Test.make
            ~name:(Printf.sprintf "differential %s on %s" aname mname)
            ~count:25
            QCheck.(int_range 0 100_000)
            (fun seed -> run_one ~mname machine ~aname alloc seed))
        algorithms)
    machines

let suite = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

(* Full managed pipeline, under the oracle sandwich: RPO relayout, then
   Diffexec.check_pipeline runs every pass (copyprop, dce, allocation,
   motion, peephole, slots), re-interpreting after each one and
   re-verifying every post-allocation stage. Any divergence — from the
   allocator or pinned to a cleanup pass — fails the property. *)
let run_full_pipeline ~mname machine ~aname algo seed =
  let params =
    {
      Lsra_workloads.Gen.default_params with
      Lsra_workloads.Gen.seed;
      n_temps = 8 + (seed mod 11);
      n_stmts = 10 + (seed mod 13);
      n_funcs = 1 + (seed mod 2);
    }
  in
  let prog = Lsra_workloads.Gen.program ~params machine in
  Lsra.Layout.apply_rpo_program prog;
  match
    Lsra_sim.Diffexec.check_pipeline ~input:"pipeline"
      ~passes:Lsra.Passes.all machine algo prog
  with
  | Ok _stats -> true
  | Error d ->
    QCheck.Test.fail_reportf "[%s/%s seed %d] %s" mname aname seed
      (Lsra_sim.Diffexec.divergence_to_string d)

let pipeline_tests =
  List.concat_map
    (fun (mname, machine) ->
      List.map
        (fun algo ->
          QCheck.Test.make
            ~name:
              (Printf.sprintf "full pipeline %s on %s (all passes)"
                 (Lsra.Allocator.short_name algo)
                 mname)
            ~count:10
            QCheck.(int_range 0 100_000)
            (fun seed ->
              run_full_pipeline ~mname machine
                ~aname:(Lsra.Allocator.short_name algo)
                algo seed))
        Lsra.Allocator.all)
    [
      ("alpha", Machine.alpha_like);
      ("tiny-4", Machine.small ~int_regs:4 ~float_regs:4 ());
    ]

let suite =
  suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) pipeline_tests
