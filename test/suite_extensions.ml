open Lsra_ir
open Lsra_target
module B = Builder
open Helpers

(* Tests for the extension passes: Precheck, Slots (frame compaction),
   Layout (RPO reordering). *)

(* ---------------- precheck ---------------- *)

let test_precheck_accepts_workloads () =
  let machine = Machine.alpha_like in
  List.iter
    (fun (case : Lsra_workloads.Specbench.case) ->
      List.iter
        (fun (_, f) ->
          match Lsra.Precheck.check machine f with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "%s rejected: %s"
              case.Lsra_workloads.Specbench.name msg)
        (Program.funcs case.Lsra_workloads.Specbench.program))
    (Lsra_workloads.Specbench.all machine ~scale:1)

let test_precheck_rejects_spill_code () =
  let machine = Machine.small () in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  B.insn b (Instr.Spill_load { dst = Loc.Reg (Machine.int_ret machine); slot = 0 });
  B.ret b;
  let f = B.finish b in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Lsra.Precheck.check machine f))

let test_precheck_rejects_cross_block_register () =
  let machine = Machine.small () in
  let r = Machine.int_ret machine in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  B.move b (Loc.Reg r) (Operand.int 1);
  B.jump b "next";
  B.start_block b "next";
  let t = B.temp b Rclass.Int in
  B.movet b t (Operand.reg r) (* reads $r0 defined in another block *);
  B.ret b;
  let f = B.finish b in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Lsra.Precheck.check machine f))

let test_precheck_allows_entry_params () =
  let machine = Machine.small ~int_regs:6 ~int_caller_saved:3 () in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  let t = B.temp b Rclass.Int in
  B.movet b t (Operand.reg (Machine.arg_reg machine Rclass.Int 0));
  B.move b (Loc.Reg (Machine.int_ret machine)) (Operand.temp t);
  B.ret b;
  let f = B.finish b in
  Alcotest.(check bool) "accepted" true
    (Result.is_ok (Lsra.Precheck.check machine f))

let test_precheck_rejects_nonexistent_register () =
  let machine = Machine.small ~int_regs:4 () in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  B.move b (Loc.Reg (Mreg.make ~cls:Rclass.Int 20)) (Operand.int 1);
  B.ret b;
  let f = B.finish b in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Lsra.Precheck.check machine f))

let test_precheck_rejects_use_before_def () =
  let machine = Machine.small () in
  let b = B.create ~name:"f" in
  let t = B.temp b Rclass.Int in
  B.start_block b "entry";
  B.move b (Loc.Reg (Machine.int_ret machine)) (Operand.temp t);
  B.ret b;
  let f = B.finish b in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Lsra.Precheck.check machine f))

(* ---------------- frame compaction ---------------- *)

let test_slots_compaction_saves_words () =
  let machine = Machine.small ~int_regs:3 ~float_regs:3 () in
  let f = pressure_func ~width:8 ~iters:5 in
  let prog = prog_of_func f in
  let reference = Lsra_sim.Interp.run machine prog ~input:"" in
  let copy = Program.copy prog in
  let f' = Program.find_exn copy "main" in
  ignore (Lsra.Second_chance.run machine f');
  let before = Func.n_slots f' in
  Alcotest.(check bool) "spilled into several slots" true (before >= 2);
  let saved = Lsra.Slots.run f' in
  Alcotest.(check int) "slot count dropped by the savings" (before - saved)
    (Func.n_slots f');
  (* behaviour preserved *)
  match reference, Lsra_sim.Interp.run machine copy ~input:"" with
  | Ok a, Ok b ->
    Alcotest.(check string) "ret"
      (Lsra_sim.Value.to_string a.Lsra_sim.Interp.ret)
      (Lsra_sim.Value.to_string b.Lsra_sim.Interp.ret)
  | Error e, _ | _, Error e -> Alcotest.failf "trapped: %s" e

let test_slots_shares_disjoint_lifetimes () =
  (* two spill slots with provably disjoint lifetimes must end up
     sharing one frame word, and the rehoming must be traced *)
  let machine = Machine.small () in
  let r = Machine.int_ret machine in
  let b = B.create ~name:"f" in
  B.start_block b "entry";
  B.move b (Loc.Reg r) (Operand.int 1);
  B.insn b (Instr.Spill_store { src = Loc.Reg r; slot = 0 });
  B.insn b (Instr.Spill_load { dst = Loc.Reg r; slot = 0 });
  (* slot 0 is dead from here on; slot 1's lifetime starts after *)
  B.insn b (Instr.Spill_store { src = Loc.Reg r; slot = 1 });
  B.insn b (Instr.Spill_load { dst = Loc.Reg r; slot = 1 });
  B.ret b;
  let f = B.finish b in
  Func.set_slot_count f 2;
  let trace = Lsra.Trace.create () in
  let saved = Lsra.Slots.run ~trace f in
  Alcotest.(check int) "one frame word shared" 1 saved;
  Alcotest.(check int) "one slot remains" 1 (Func.n_slots f);
  Alcotest.(check bool) "renumbering traced" true
    (List.exists
       (fun (e : Lsra.Trace.event) ->
         match e with
         | Lsra.Trace.Slot_renumber { fn = "f"; from_slot = 1; to_slot = 0 }
           ->
           true
         | _ -> false)
       (Lsra.Trace.events trace));
  (* both loads now read the shared word *)
  Func.iter_instrs f (fun i ->
      match Instr.desc i with
      | Instr.Spill_load { slot; _ } | Instr.Spill_store { slot; _ } ->
        Alcotest.(check int) "rehomed to slot 0" 0 slot
      | _ -> ())

let test_slots_compaction_on_workloads () =
  let machine =
    Machine.small ~int_regs:7 ~float_regs:7 ~int_caller_saved:4
      ~float_caller_saved:4 ()
  in
  List.iter
    (fun (case : Lsra_workloads.Specbench.case) ->
      let reference =
        Lsra_sim.Interp.run machine case.Lsra_workloads.Specbench.program
          ~input:case.Lsra_workloads.Specbench.input
      in
      let copy = Program.copy case.Lsra_workloads.Specbench.program in
      ignore
        (Lsra.Allocator.pipeline Lsra.Allocator.default_second_chance machine
           copy);
      ignore (Lsra.Slots.run_program copy);
      match
        ( reference,
          Lsra_sim.Interp.run machine copy
            ~input:case.Lsra_workloads.Specbench.input )
      with
      | Ok a, Ok b ->
        Alcotest.(check string)
          (case.Lsra_workloads.Specbench.name ^ " output")
          a.Lsra_sim.Interp.output b.Lsra_sim.Interp.output
      | Error e, _ | _, Error e ->
        Alcotest.failf "%s trapped: %s" case.Lsra_workloads.Specbench.name e)
    (Lsra_workloads.Specbench.all machine ~scale:1)

(* ---------------- layout ---------------- *)

let scrambled_func () =
  (* blocks deliberately laid out against the flow: exit first after
     entry, loop body last *)
  let machine = Machine.small ~int_regs:4 () in
  let b = B.create ~name:"main" in
  let acc = B.temp b Rclass.Int ~name:"acc" in
  let i = B.temp b Rclass.Int ~name:"i" in
  let xs = List.init 5 (fun k -> B.temp b Rclass.Int ~name:(Printf.sprintf "x%d" k)) in
  B.start_block b "entry";
  B.li b acc 0;
  B.li b i 0;
  List.iteri (fun k x -> B.li b x k) xs;
  B.jump b "head";
  B.start_block b "exit";
  B.move b (Loc.Reg (Machine.int_ret machine)) (Operand.temp acc);
  B.ret b;
  B.start_block b "head";
  B.branch b Instr.Lt (Operand.temp i) (Operand.int 6) ~ifso:"body" ~ifnot:"exit";
  B.start_block b "body";
  List.iter (fun x -> B.bin b Instr.Add acc (o_temp acc) (o_temp x)) xs;
  B.bin b Instr.Add i (o_temp i) (o_int 1);
  B.jump b "head";
  (machine, B.finish b)

let test_rpo_order () =
  let _, f = scrambled_func () in
  let order = Lsra.Layout.rpo_order f in
  Alcotest.(check bool) "entry first" true (List.hd order = "entry");
  Alcotest.(check int) "all blocks present" 4 (List.length order);
  (* head precedes both body and exit in RPO *)
  let idx l = Option.get (List.find_index (String.equal l) order) in
  Alcotest.(check bool) "head before body" true (idx "head" < idx "body");
  Alcotest.(check bool) "head before exit" true (idx "head" < idx "exit")

let test_rpo_preserves_behaviour () =
  let machine, f = scrambled_func () in
  let prog = prog_of_func f in
  let reference = Lsra_sim.Interp.run machine prog ~input:"" in
  let copy = Program.copy prog in
  Lsra.Layout.apply_rpo_program copy;
  (match reference, Lsra_sim.Interp.run machine copy ~input:"" with
  | Ok a, Ok b ->
    Alcotest.(check string) "ret"
      (Lsra_sim.Value.to_string a.Lsra_sim.Interp.ret)
      (Lsra_sim.Value.to_string b.Lsra_sim.Interp.ret)
  | Error e, _ | _, Error e -> Alcotest.failf "trapped: %s" e);
  (* and allocation on the reordered program still verifies + matches *)
  ignore
    (check_differential ~name:"rpo-alloc" machine copy
       (second_chance machine))

let test_rpo_reduces_resolution_on_scrambled_layout () =
  (* layout effects are heuristic per function; the claim is aggregate:
     over many random programs whose non-entry blocks have been reversed
     (an adversarial layout), RPO reordering produces no more total
     resolution code *)
  let machine = Machine.small ~int_regs:5 ~float_regs:5 () in
  let total_scrambled = ref 0 and total_rpo = ref 0 in
  for seed = 0 to 14 do
    let params =
      { Lsra_workloads.Gen.default_params with Lsra_workloads.Gen.seed }
    in
    let prog = Lsra_workloads.Gen.program ~params machine in
    List.iter
      (fun (_, f) ->
        let cfg = Func.cfg f in
        (* reverse every block after the entry *)
        let labels =
          Array.to_list (Cfg.blocks cfg) |> List.map Block.label
        in
        (match labels with
        | entry :: rest -> Cfg.reorder cfg (entry :: List.rev rest)
        | [] -> ());
        let resolution g =
          let g = Func.copy g in
          let stats = Lsra.Second_chance.run machine g in
          stats.Lsra.Stats.resolve_loads + stats.Lsra.Stats.resolve_stores
          + stats.Lsra.Stats.resolve_moves
        in
        total_scrambled := !total_scrambled + resolution f;
        let r = Func.copy f in
        Lsra.Layout.apply_rpo r;
        total_rpo := !total_rpo + resolution r)
      (Program.funcs prog)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rpo total (%d) <= scrambled total (%d)" !total_rpo
       !total_scrambled)
    true
    (!total_rpo <= !total_scrambled)

let test_reorder_rejects_bad_permutations () =
  let _, f = scrambled_func () in
  let cfg = Func.cfg f in
  Alcotest.(check bool) "wrong count rejected" true
    (match Cfg.reorder cfg [ "entry" ] with
    | exception Cfg.Malformed _ -> true
    | _ -> false);
  Alcotest.(check bool) "entry must stay first" true
    (match Cfg.reorder cfg [ "head"; "entry"; "body"; "exit" ] with
    | exception Cfg.Malformed _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "precheck accepts the workloads" `Quick
      test_precheck_accepts_workloads;
    Alcotest.test_case "precheck rejects spill code" `Quick
      test_precheck_rejects_spill_code;
    Alcotest.test_case "precheck rejects cross-block registers" `Quick
      test_precheck_rejects_cross_block_register;
    Alcotest.test_case "precheck allows entry parameters" `Quick
      test_precheck_allows_entry_params;
    Alcotest.test_case "precheck rejects unknown registers" `Quick
      test_precheck_rejects_nonexistent_register;
    Alcotest.test_case "precheck rejects use-before-def" `Quick
      test_precheck_rejects_use_before_def;
    Alcotest.test_case "frame compaction saves words" `Quick
      test_slots_compaction_saves_words;
    Alcotest.test_case "frame compaction shares disjoint lifetimes" `Quick
      test_slots_shares_disjoint_lifetimes;
    Alcotest.test_case "frame compaction preserves workloads" `Quick
      test_slots_compaction_on_workloads;
    Alcotest.test_case "rpo order" `Quick test_rpo_order;
    Alcotest.test_case "rpo preserves behaviour" `Quick
      test_rpo_preserves_behaviour;
    Alcotest.test_case "rpo reduces resolution on bad layouts" `Quick
      test_rpo_reduces_resolution_on_scrambled_layout;
    Alcotest.test_case "reorder input validation" `Quick
      test_reorder_rejects_bad_permutations;
  ]
