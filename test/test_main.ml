let () =
  Alcotest.run "lsra"
    [
      ("ir", Suite_ir.suite);
      ("analysis", Suite_analysis.suite);
      ("lifetime", Suite_lifetime.suite);
      ("interp", Suite_interp.suite);
      ("verify", Suite_verify.suite);
      ("resolution", Suite_resolution.suite);
      ("motion", Suite_motion.suite);
      ("passes", Suite_passes.suite);
      ("extensions", Suite_extensions.suite);
      ("torture", Suite_torture.suite);
      ("minilang", Suite_minilang.suite);
      ("binpack", Suite_binpack.suite);
      ("coloring", Suite_coloring.suite);
      ("coloring-internals", Suite_coloring_internals.suite);
      ("baselines", Suite_baselines.suite);
      ("optimal", Suite_optimal.suite);
      ("properties", Suite_props.suite);
      ("diffexec", Suite_diffexec.suite);
      ("workloads", Suite_workloads.suite);
      ("text", Suite_text.suite);
      ("trace", Suite_trace.suite);
      ("service", Suite_service.suite);
      ("server", Suite_server.suite);
      ("parallel", Suite_parallel.suite);
      ("native", Suite_native.suite);
    ]
