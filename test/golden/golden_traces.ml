(* Golden decision traces: the second-chance allocator's full decision
   stream for three representative functions, diffed against the
   committed expectation by the runtest rule in this directory.  Any
   change to the allocator's decisions shows up as a readable trace
   diff; after reviewing it, refresh the expectation with

     dune promote test/golden/traces.expected
*)

open Lsra_target
module Trace = Lsra.Trace

let print_trace header machine prog ~fn =
  let trace = Trace.create () in
  ignore
    (Lsra.Allocator.run_program ~trace Lsra.Allocator.default_second_chance
       machine prog);
  Printf.printf "==== %s ====\n" header;
  print_string (Trace.to_text (Trace.filter_fn fn (Trace.events trace)))

let () =
  (match Lsra_workloads.Specbench.find Machine.alpha_like ~scale:1 "wc" with
  | None -> assert false
  | Some case ->
    print_trace "specbench wc, main, alpha-like" Machine.alpha_like
      case.Lsra_workloads.Specbench.program ~fn:"main");
  let mini name mname machine source =
    let prog = Lsra_frontend.Minilang.compile machine source in
    print_trace (Printf.sprintf "minilang %s, main, %s" name mname) machine
      prog ~fn:"main"
  in
  mini "collatz" "small-4" (Machine.small ()) Lsra_workloads.Mini_corpus.collatz;
  (* matmul's helpers take two parameters, which the frontend only
     lowers on machines with enough argument registers *)
  mini "matmul" "alpha-like" Machine.alpha_like
    Lsra_workloads.Mini_corpus.matmul
