(* Golden byte-level encodings: the native backend's annotated listing
   (including every instruction's hex bytes) for hand-written
   post-allocation programs, diffed against the committed expectation by
   the runtest rule in this directory. The programs are written directly
   in machine registers and spill slots, so no allocator runs: any byte
   change here is an encoder/lowering change, not an allocation change.
   Emission is pure OCaml and host-independent — this fixture runs (and
   must agree) on non-x86-64 hosts too. After reviewing a diff, refresh
   with

     dune promote test/golden/encodings.expected
*)

open Lsra_target

let print_listing header machine source =
  let prog = Lsra_text.Ir_text.of_string source in
  Printf.printf "==== %s ====\n" header;
  match Lsra_native.Lower.compile machine prog with
  | Error e -> Printf.printf "emission failed: %s\n" e
  | Ok compiled -> print_string (Lsra_native.Lower.dump_asm compiled)

(* Integer ALU coverage on the 4-register small machine: every binop
   (including the div/rem guard and the shift-normalisation sequences),
   every unop, compares into a register, a conditional branch and the
   immediate paths (imm32 vs movabs). All four registers are in the
   direct pool, so this pins the register-register encodings. *)
let int_ops =
  {|program main=main heap=16

func main {
  block entry:
    $r0 := 7
    $r1 := 1000000000000
    $r2 := add $r0, $r1
    $r2 := sub $r2, 3
    $r3 := mul $r2, $r0
    $r3 := div $r3, $r0
    $r2 := rem $r3, 10
    $r2 := and $r2, $r3
    $r2 := or $r2, 1
    $r2 := xor $r2, $r0
    $r3 := sll $r2, 2
    $r3 := srl $r3, 1
    $r3 := sra $r3, 1
    $r1 := neg $r3
    $r1 := not $r1
    $r0 := cmp.lt $r1, $r3
    br.ge $r1, 0 ? big : done
  block big:
    $r0 := cmp.eq $r1, $r3
    jump done
  block done:
    ret
}
|}

(* Floats, spill slots and the heap: float arithmetic through the xmm
   scratch pair, NaN-correct compares, conversions, sign-bit negation,
   both classes round-tripping through slots, and the two-stage
   bounds-checked heap addressing. *)
let float_slots =
  {|program main=main heap=16

func main {
  block entry:
    $f0 := 0x1.8p+0
    $f1 := 0x1p-1
    $f2 := fadd $f0, $f1
    $f2 := fsub $f2, $f1
    $f3 := fmul $f2, $f0
    $f3 := fdiv $f3, $f2
    $f1 := fneg $f3
    $r1 := cmp.feq $f1, $f3
    $r2 := cmp.flt $f1, $f3
    $r3 := cmp.fle $f0, $f1
    $f2 := itof $r1
    $r2 := ftoi $f2
    sstore $f3, slot0
    sstore $r2, slot1
    $f0 := sload slot0
    $r3 := sload slot1
    $r0 := 4
    store $r3, $r0[0]
    store $f0, $r0[3]
    $r1 := load $r0[0]
    $f1 := load $r0[3]
    ret
}
|}

(* Calls on an 8-register machine: registers 4..7 live in the context
   bank (pinning the banked load/store encodings), an IR call saves and
   restores the abstract callee-saved set around the frame's save area,
   and an ext intrinsic routes through the helper slot with a trap check
   on return. *)
let calls_banked =
  {|program main=main heap=16

func main {
  block entry:
    $r5 := 11
    $r6 := add $r5, 1
    $f5 := 0x1p+0
    $r1 := 2
    call helper($r1) -> $r0 ! $r0 $r1 $r2 $r3 $f0 $f1 $f2 $f3
    $r7 := add $r0, $r6
    $r1 := $r7
    call ext_puti($r1) -> $r0 ! $r0 $r1 $r2 $r3 $f0 $f1 $f2 $f3
    ret

}

func helper {
  block entry:
    $r0 := mul $r1, 3
    ret
}
|}

let () =
  print_listing "int ops, small-4" (Machine.small ()) int_ops;
  print_listing "floats + slots + heap, small-4" (Machine.small ())
    float_slots;
  print_listing "calls + banked registers, small-8"
    (Machine.small ~int_regs:8 ~float_regs:8 ~int_caller_saved:4
       ~float_caller_saved:4 ())
    calls_banked
